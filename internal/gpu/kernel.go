package gpu

import (
	"sync"

	"gpuddt/internal/mem"
	"gpuddt/internal/sim"
)

// KernelKind selects the cost model for a pack/unpack kernel.
type KernelKind int

const (
	// VectorKernel is the specialized blocklength/stride kernel of §3.1:
	// a regular grid, no descriptor fetches, 8-byte accesses with
	// prologue/epilogue alignment handling.
	VectorKernel KernelKind = iota
	// DEVKernel is the generic kernel of §3.2 driven by an array of
	// cuda_dev_dist work units; partial and misaligned units pay extra
	// memory transactions and divergence.
	DEVKernel
)

func (k KernelKind) String() string {
	if k == VectorKernel {
		return "vector"
	}
	return "dev"
}

// Unit is one contiguous copy performed by a kernel: Len bytes from
// Src+SrcOff to Dst+DstOff of the owning Kernel. For a pack operation the
// destination side is the contiguous buffer; for unpack the source side
// is. Partial marks units shorter than the full CUDA-DEV split size S.
type Unit struct {
	SrcOff, DstOff int64
	Len            int32
	Partial        bool
}

// unitPool recycles Unit slices between kernel launches: a figure sweep
// issues millions of launches and the descriptor arrays are the last
// remaining steady-state allocation on the pack path.
var unitPool sync.Pool

// GetUnits returns a descriptor slice of length n, reusing the array of
// a completed kernel when one is large enough. Entries hold stale data;
// the caller must assign every element. Ownership passes to the Kernel:
// run() returns the slice to the pool, so neither the caller nor anyone
// else may touch Units after the kernel's future resolves.
func GetUnits(n int) []Unit {
	if v := unitPool.Get(); v != nil {
		if s := v.([]Unit); cap(s) >= n {
			return s[:n]
		}
	}
	return make([]Unit, n)
}

// Kernel describes one pack or unpack kernel launch. Units reference the
// Src and Dst base buffers by offset, keeping descriptors compact (as the
// cuda_dev_dist array does in the paper).
type Kernel struct {
	Kind   KernelKind
	Src    mem.Buffer
	Dst    mem.Buffer
	Units  []Unit
	Blocks int // requested grid size; 0 = device default
}

// Bytes returns the number of useful bytes the kernel moves.
func (k *Kernel) Bytes() int64 {
	var n int64
	for _, u := range k.Units {
		n += int64(u.Len)
	}
	return n
}

// ceilWarp rounds n up to a whole number of warp-wide transactions.
func ceilWarp(n, warp int64) int64 {
	return (n + warp - 1) / warp * warp
}

// rawBytes computes the raw DRAM traffic of the kernel under the
// coalescing model: the contiguous side of each unit is fully coalesced
// (Len bytes), the scattered side costs whole warp iterations
// (ceil(Len/warp)*warp), and DEV units pay penalties when misaligned or
// partial. The result is then derated by the kernel kind's efficiency.
func (d *Device) rawBytes(k *Kernel) int64 {
	warp := d.p.WarpBytes
	var raw int64
	for _, u := range k.Units {
		n := int64(u.Len)
		raw += n + ceilWarp(n, warp)
		if k.Kind == DEVKernel {
			if (k.Src.Addr()+u.SrcOff)%warp != 0 || (k.Dst.Addr()+u.DstOff)%warp != 0 {
				raw += d.p.MisalignPenaltyRaw
			}
			if u.Partial {
				raw += d.p.PartialPenaltyRaw
			}
		}
	}
	return raw
}

func (d *Device) kernelEff(kind KernelKind) float64 {
	if kind == VectorKernel {
		return d.p.VectorKernelEff
	}
	return d.p.DEVKernelEff
}

// KernelTime predicts the execution time of k (excluding launch overhead)
// on the given grid, for planning pipeline fragment sizes.
func (d *Device) KernelTime(k *Kernel) sim.Time {
	raw := d.rawBytes(k)
	rate := d.kernelRawRate(d.availableBlocks(k.Blocks)) * d.kernelEff(k.Kind)
	return sim.TimeForBytes(raw, rate)
}

// Launch submits kernel k to stream s. The returned future completes when
// the kernel has executed: launch overhead, DRAM occupancy per the cost
// model, and the actual byte movement of every unit.
func (d *Device) Launch(s *Stream, k *Kernel) *sim.Future {
	raw := d.rawBytes(k)
	rate := d.kernelRawRate(d.availableBlocks(k.Blocks)) * d.kernelEff(k.Kind)
	return s.SubmitN("kernel."+k.Kind.String(), k.Bytes(), func(p *sim.Proc) {
		d.launchGate(p, k.Bytes())
		d.chargeDRAM(p, raw, rate)
		k.run()
		d.kernelsRun++
	})
}

// LaunchZeroCopy submits kernel k whose contiguous side is not in this
// device's memory: a mapped host buffer (CUDA UMA zero copy) or a peer
// GPU's memory. The data crosses link as part of kernel execution,
// overlapping the transfer with the scattered-side DRAM accesses.
// wireBytes is the PCIe traffic charged on the link — pass more than
// k.Bytes() to model inefficient access patterns (e.g. scattered reads
// from remote device memory). The link is held for the longer of the
// kernel time and the wire time, as on real hardware where the slower
// side throttles the other.
func (d *Device) LaunchZeroCopy(s *Stream, k *Kernel, link *sim.Link, wireBytes int64) *sim.Future {
	raw := d.rawBytes(k)
	rate := d.kernelRawRate(d.availableBlocks(k.Blocks)) * d.kernelEff(k.Kind)
	n := wireBytes
	return s.SubmitN("kernel.zerocopy."+k.Kind.String(), k.Bytes(), func(p *sim.Proc) {
		d.launchGate(p, k.Bytes())
		hold := sim.TimeForBytes(raw, rate)
		if wire := link.OccupancyFor(n); wire > hold {
			hold = wire
		}
		link.HoldFor(p, n, hold)
		p.Sleep(link.Latency())
		k.run()
		d.kernelsRun++
		d.rawMoved += raw
	})
}

// Compute submits a memory-bound compute kernel (e.g. a reduction
// combine) that touches raw bytes of DRAM traffic without moving data;
// the caller performs any byte manipulation after awaiting the future.
func (d *Device) Compute(s *Stream, raw int64, blocks int) *sim.Future {
	rate := d.kernelRawRate(d.availableBlocks(blocks))
	return s.Submit("kernel.compute", func(p *sim.Proc) {
		d.launchGate(p, raw)
		d.chargeDRAM(p, raw, rate)
		d.kernelsRun++
	})
}

// run moves the bytes of every unit. Called at kernel completion time so
// no process can observe partially written data earlier in virtual time.
// The descriptor array is recycled afterwards (see GetUnits).
func (k *Kernel) run() {
	for _, u := range k.Units {
		mem.Copy(k.Dst.Slice(u.DstOff, int64(u.Len)), k.Src.Slice(u.SrcOff, int64(u.Len)))
	}
	unitPool.Put(k.Units[:0])
	k.Units = nil
}
