package gpu

import (
	"fmt"

	"gpuddt/internal/sim"
)

// Stream is a CUDA-style in-order work queue. Operations submitted to one
// stream execute serially; distinct streams execute concurrently, sharing
// the device's DRAM port and copy engines. A dedicated daemon process
// drains each stream.
type Stream struct {
	dev  *Device
	name string
	q    *sim.Mailbox
}

type streamOp struct {
	label string
	bytes int64
	fn    func(p *sim.Proc)
	done  *sim.Future
}

// NewStream creates a stream and starts its worker.
func (d *Device) NewStream(name string) *Stream {
	s := &Stream{
		dev:  d,
		name: fmt.Sprintf("gpu%d.%s", d.id, name),
		q:    d.eng.NewMailbox(fmt.Sprintf("gpu%d.%s.q", d.id, name)),
	}
	d.eng.SpawnDaemon(s.name, func(p *sim.Proc) {
		for {
			op := s.q.Get(p).(*streamOp)
			if op.fn != nil {
				h := p.BeginBytes(op.label, op.bytes)
				op.fn(p)
				h.End()
			}
			op.done.Complete(nil)
		}
	})
	return s
}

// Device returns the stream's device.
func (s *Stream) Device() *Device { return s.dev }

// Name returns the stream name.
func (s *Stream) Name() string { return s.name }

// Submit enqueues fn on the stream and returns a future that completes
// when fn has finished. fn runs on the stream worker process and may
// sleep, hold resources and move bytes.
func (s *Stream) Submit(label string, fn func(p *sim.Proc)) *sim.Future {
	return s.SubmitN(label, 0, fn)
}

// SubmitN is Submit with a payload byte count attached to the operation's
// timeline span.
func (s *Stream) SubmitN(label string, bytes int64, fn func(p *sim.Proc)) *sim.Future {
	op := &streamOp{label: label, bytes: bytes, fn: fn, done: s.dev.eng.NewFuture()}
	s.q.Put(op)
	return op.done
}

// Record enqueues a marker (a CUDA event) and returns its future: it
// completes when all previously submitted work on the stream has finished.
func (s *Stream) Record() *sim.Future {
	return s.Submit("event", nil)
}

// Sync blocks the calling process until all work submitted so far has
// completed (cudaStreamSynchronize).
func (s *Stream) Sync(p *sim.Proc) {
	s.Record().Await(p)
}
