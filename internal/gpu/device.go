package gpu

import (
	"fmt"

	"gpuddt/internal/fault"
	"gpuddt/internal/mem"
	"gpuddt/internal/sim"
)

// Device is one simulated GPU: device memory, a DRAM port shared by all
// on-device traffic, DMA copy engines toward the host (wired up by the
// PCIe topology), and SM-limited kernel execution.
type Device struct {
	eng  *sim.Engine
	id   int
	p    Params
	mem  *mem.Space
	dram *sim.Resource

	// H2D and D2H are the PCIe copy-engine links toward host memory,
	// installed by the pcie topology builder. Nil until wired.
	H2D, D2H *sim.Link

	blockCap   int     // kernel grid cap (0 = no cap beyond DefaultBlocks)
	bgBlocks   int     // CUDA blocks held by a background application (§5.4)
	bgDRAMFrac float64 // DRAM fraction consumed by the background app
	faults     *fault.Injector

	kernelsRun int64
	rawMoved   int64

	// ddtCache hosts the per-device datatype-engine descriptor cache.
	// It is opaque here (the concrete type lives in internal/core, which
	// imports this package) and shared by every engine bound to the
	// device.
	ddtCache interface{}
}

// NewDevice creates a GPU with the given calibration profile.
func NewDevice(eng *sim.Engine, id int, p Params) *Device {
	d := &Device{
		eng:  eng,
		id:   id,
		p:    p,
		mem:  mem.NewSpace(fmt.Sprintf("gpu%d", id), mem.Device, p.MemBytes),
		dram: eng.NewResource(fmt.Sprintf("gpu%d.dram", id), 1),
	}
	return d
}

// Engine returns the simulation engine the device is bound to.
func (d *Device) Engine() *sim.Engine { return d.eng }

// ID returns the device index within its node.
func (d *Device) ID() int { return d.id }

// Params returns the calibration profile.
func (d *Device) Params() Params { return d.p }

// Mem returns the device memory space.
func (d *Device) Mem() *mem.Space { return d.mem }

// Release recycles the device memory's backing storage (see
// mem.Space.Release). The device must not be used afterwards.
func (d *Device) Release() { d.mem.Release() }

// KernelsRun returns the number of kernels executed so far.
func (d *Device) KernelsRun() int64 { return d.kernelsRun }

// DDTCache returns the datatype-engine cache attached to the device, or
// nil if none has been installed yet.
func (d *Device) DDTCache() interface{} { return d.ddtCache }

// SetDDTCache attaches the device-wide datatype-engine cache.
func (d *Device) SetDDTCache(v interface{}) { d.ddtCache = v }

// SetFaults installs a fault injector; kernel launches may then fail
// and be retried autonomously (see launchGate). Nil disables injection.
func (d *Device) SetFaults(in *fault.Injector) { d.faults = in }

// launchGate models the driver's launch attempt under fault injection:
// an injected launch failure is retried on the stream with capped
// exponential backoff — recovery is autonomous, without host-side help,
// as in NIC-offloaded designs — so only its latency, never the error,
// escapes the device. Each attempt charges the launch overhead; the
// return means the kernel is running. Exhausting the budget is fatal:
// at any transient rate the probability is negligible, and a persistent
// launch fault means the device itself is gone.
func (d *Device) launchGate(p *sim.Proc, bytes int64) {
	for attempt := 0; ; attempt++ {
		p.Sleep(d.p.KernelLaunch)
		err := d.faults.Check(p, fault.KernelLaunch, bytes)
		if err == nil {
			return
		}
		if attempt+1 >= d.faults.MaxAttempts() {
			panic(fmt.Sprintf("gpu%d: kernel launch failed after %d attempts: %v", d.id, attempt+1, err))
		}
		p.Count("gpu.launch.retry", 1)
		p.Sleep(d.faults.Backoff(attempt))
	}
}

// SetBlockCap restricts pack/unpack kernels to at most n CUDA blocks
// (the §5.3 "minimal resources" experiment). n <= 0 removes the cap.
func (d *Device) SetBlockCap(n int) { d.blockCap = n }

// SetBackgroundLoad models a co-resident GPU-intensive application
// (§5.4): it permanently occupies blocks CUDA blocks and consumes
// dramFrac of the raw DRAM bandwidth.
func (d *Device) SetBackgroundLoad(blocks int, dramFrac float64) {
	if blocks < 0 || dramFrac < 0 || dramFrac >= 1 {
		panic("gpu: invalid background load")
	}
	d.bgBlocks = blocks
	d.bgDRAMFrac = dramFrac
}

// availableBlocks resolves a requested grid size against caps and the
// background application's footprint. At least one block is always
// schedulable (the background app time-slices).
func (d *Device) availableBlocks(requested int) int {
	avail := d.p.DefaultBlocks - d.bgBlocks
	if d.blockCap > 0 && d.blockCap < avail {
		avail = d.blockCap
	}
	if avail < 1 {
		avail = 1
	}
	if requested > 0 && requested < avail {
		return requested
	}
	return avail
}

// dramRawRate returns the raw DRAM bandwidth available to foreground
// work, in GB/s.
func (d *Device) dramRawRate() float64 {
	return d.p.DRAMRawGBps * (1 - d.bgDRAMFrac)
}

// kernelRawRate returns the raw throughput (GB/s) of a kernel running on
// the given number of blocks: SM-limited below the DRAM peak.
func (d *Device) kernelRawRate(blocks int) float64 {
	r := float64(blocks) * d.p.PerBlockRawGBps
	if peak := d.dramRawRate(); r > peak {
		r = peak
	}
	return r
}

// chargeDRAM occupies the device DRAM port for raw bytes of traffic at
// rate GB/s (rate is the kernel's achievable rate; if it is below the
// DRAM peak, the port is held only for the peak-rate portion so that
// concurrent streams can interleave, and the remainder is idle time).
func (d *Device) chargeDRAM(p *sim.Proc, raw int64, rate float64) {
	dramTime := sim.TimeForBytes(raw, d.dramRawRate())
	total := sim.TimeForBytes(raw, rate)
	d.dram.Acquire(p)
	p.Sleep(dramTime)
	d.dram.Release()
	if total > dramTime {
		p.Sleep(total - dramTime)
	}
	d.rawMoved += raw
}

// copyD2DTime is the duration of a device-to-device cudaMemcpy of n bytes
// (reads and writes both cross the DRAM port).
func (d *Device) copyD2DTime(n int64) sim.Time {
	return sim.TimeForBytes(2*n, d.dramRawRate()*d.p.MemcpyD2DEff)
}

// CopyD2D performs a synchronous intra-device copy on the calling
// process, charging memcpy overhead plus DRAM occupancy.
func (d *Device) CopyD2D(p *sim.Proc, dst, src mem.Buffer) {
	if dst.Len() != src.Len() {
		panic("gpu: CopyD2D length mismatch")
	}
	p.Sleep(d.p.MemcpyOverhead)
	d.chargeDRAM(p, 2*src.Len(), d.dramRawRate()*d.p.MemcpyD2DEff)
	mem.Copy(dst, src)
}
