package gpu

import (
	"testing"

	"gpuddt/internal/mem"
	"gpuddt/internal/sim"
)

func newDev(t *testing.T) (*sim.Engine, *Device) {
	t.Helper()
	e := sim.NewEngine()
	return e, NewDevice(e, 0, KeplerK40())
}

// contigKernel builds a kernel that copies n bytes as aligned, full units
// of unitLen bytes.
func contigKernel(kind KernelKind, src, dst mem.Buffer, unitLen int64) *Kernel {
	k := &Kernel{Kind: kind, Src: src, Dst: dst}
	n := src.Len()
	for off := int64(0); off < n; off += unitLen {
		l := unitLen
		if off+l > n {
			l = n - off
		}
		k.Units = append(k.Units, Unit{SrcOff: off, DstOff: off, Len: int32(l), Partial: l < unitLen})
	}
	return k
}

func TestKernelMovesBytes(t *testing.T) {
	e, d := newDev(t)
	src := d.Mem().Alloc(4096, 256)
	dst := d.Mem().Alloc(4096, 256)
	mem.FillPattern(src, 1)
	e.Spawn("host", func(p *sim.Proc) {
		s := d.NewStream("s")
		d.Launch(s, contigKernel(VectorKernel, src, dst, 1024)).Await(p)
	})
	e.Run()
	if !mem.Equal(src, dst) {
		t.Fatal("kernel did not copy data")
	}
	if d.KernelsRun() != 1 {
		t.Fatalf("kernelsRun = %d", d.KernelsRun())
	}
}

func TestVectorKernelNear94Percent(t *testing.T) {
	e, d := newDev(t)
	n := int64(64 << 20) // large enough to amortize launch
	src := d.Mem().Alloc(n, 256)
	dst := d.Mem().Alloc(n, 256)
	var dur sim.Time
	e.Spawn("host", func(p *sim.Proc) {
		s := d.NewStream("s")
		t0 := p.Now()
		d.Launch(s, contigKernel(VectorKernel, src, dst, 32768)).Await(p)
		dur = p.Now() - t0
	})
	e.Run()
	// Effective copy bandwidth counts useful bytes once; raw = 2n.
	gotEff := sim.GBps(n, dur) / (d.Params().DRAMRawGBps / 2)
	if gotEff < 0.92 || gotEff > 0.95 {
		t.Fatalf("vector kernel efficiency = %.3f, want ~0.94", gotEff)
	}
}

func TestDEVKernelPenalties(t *testing.T) {
	e, d := newDev(t)
	n := int64(32 << 20)
	src := d.Mem().Alloc(n+512, 256)
	dst := d.Mem().Alloc(n+512, 256)

	aligned := contigKernel(DEVKernel, src.Slice(0, n), dst.Slice(0, n), 1024)
	// Same shape but every unit misaligned by 8 bytes and marked partial.
	bad := contigKernel(DEVKernel, src.Slice(8, n), dst.Slice(8, n), 1024)
	for i := range bad.Units {
		bad.Units[i].Partial = true
	}

	ta := d.KernelTime(aligned)
	tb := d.KernelTime(bad)
	if tb <= ta {
		t.Fatalf("penalized kernel not slower: %v vs %v", tb, ta)
	}
	// Aligned full units: efficiency ~ DEVKernelEff relative to copy peak.
	effA := float64(2*n) / d.Params().DRAMRawGBps / 1e9 / ta.Seconds()
	if effA < 0.92 || effA > 0.96 {
		t.Fatalf("aligned DEV efficiency = %.3f", effA)
	}
	// Penalized: each 1KB unit pays 384+512 extra raw -> ~70% of aligned.
	ratio := ta.Seconds() / tb.Seconds()
	if ratio < 0.60 || ratio > 0.80 {
		t.Fatalf("penalty ratio = %.3f", ratio)
	}
	_ = e
}

func TestStreamSerializesKernels(t *testing.T) {
	e, d := newDev(t)
	src := d.Mem().Alloc(1<<20, 256)
	dst := d.Mem().Alloc(1<<20, 256)
	var t1, t2 sim.Time
	e.Spawn("host", func(p *sim.Proc) {
		s := d.NewStream("s")
		k := contigKernel(VectorKernel, src, dst, 65536)
		f1 := d.Launch(s, k)
		f2 := d.Launch(s, k)
		f2.Await(p)
		t1, t2 = f1.CompletedAt(), f2.CompletedAt()
	})
	e.Run()
	if t2 < 2*t1-sim.Nanosecond {
		t.Fatalf("second kernel overlapped first on same stream: %v vs %v", t1, t2)
	}
}

func TestTwoStreamsShareDRAM(t *testing.T) {
	e, d := newDev(t)
	src := d.Mem().Alloc(64<<20, 256)
	dst1 := d.Mem().Alloc(64<<20, 256)
	dst2 := d.Mem().Alloc(64<<20, 256)
	k1 := contigKernel(VectorKernel, src, dst1, 65536)
	k2 := contigKernel(VectorKernel, src, dst2, 65536)
	solo := d.KernelTime(k1)
	var both sim.Time
	e.Spawn("host", func(p *sim.Proc) {
		sa, sb := d.NewStream("a"), d.NewStream("b")
		fa := d.Launch(sa, k1)
		fb := d.Launch(sb, k2)
		sim.AwaitAll(p, fa, fb)
		both = p.Now()
	})
	e.Run()
	// Two DRAM-saturating kernels must take ~2x one kernel, not 1x.
	if both < solo*19/10 {
		t.Fatalf("concurrent kernels did not contend for DRAM: both=%v solo=%v", both, solo)
	}
}

func TestBlockCapSlowsKernels(t *testing.T) {
	_, d := newDev(t)
	src := d.Mem().Alloc(8<<20, 256)
	dst := d.Mem().Alloc(8<<20, 256)
	k := contigKernel(VectorKernel, src, dst, 65536)
	full := d.KernelTime(k)
	d.SetBlockCap(1)
	capped := d.KernelTime(k)
	d.SetBlockCap(0)
	// One block sustains 48 raw GB/s vs 380 peak: ~7.9x slower.
	ratio := capped.Seconds() / full.Seconds()
	if ratio < 6 || ratio > 9 {
		t.Fatalf("block-cap ratio = %.2f", ratio)
	}
}

func TestBackgroundLoadSlowsKernels(t *testing.T) {
	_, d := newDev(t)
	src := d.Mem().Alloc(8<<20, 256)
	dst := d.Mem().Alloc(8<<20, 256)
	k := contigKernel(VectorKernel, src, dst, 65536)
	full := d.KernelTime(k)
	d.SetBackgroundLoad(d.Params().DefaultBlocks/2, 0.5)
	loaded := d.KernelTime(k)
	if loaded < full*18/10 {
		t.Fatalf("background load had no effect: %v vs %v", loaded, full)
	}
}

func TestRequestedBlocksBelowDefault(t *testing.T) {
	_, d := newDev(t)
	src := d.Mem().Alloc(8<<20, 256)
	dst := d.Mem().Alloc(8<<20, 256)
	k := contigKernel(VectorKernel, src, dst, 65536)
	k.Blocks = 2
	two := d.KernelTime(k)
	k.Blocks = 4
	four := d.KernelTime(k)
	if !(four < two) {
		t.Fatalf("more blocks not faster: 2->%v 4->%v", two, four)
	}
}

func TestCopyD2D(t *testing.T) {
	e, d := newDev(t)
	src := d.Mem().Alloc(1<<20, 256)
	dst := d.Mem().Alloc(1<<20, 256)
	mem.FillPattern(src, 3)
	var dur sim.Time
	e.Spawn("host", func(p *sim.Proc) {
		t0 := p.Now()
		d.CopyD2D(p, dst, src)
		dur = p.Now() - t0
	})
	e.Run()
	if !mem.Equal(src, dst) {
		t.Fatal("copy failed")
	}
	want := d.Params().MemcpyOverhead + sim.TimeForBytes(2<<20, d.Params().DRAMRawGBps)
	if dur != want {
		t.Fatalf("dur = %v, want %v", dur, want)
	}
}

func TestZeroCopyKernelLimitedByLink(t *testing.T) {
	e, d := newDev(t)
	host := mem.NewSpace("host", mem.Host, 64<<20)
	src := d.Mem().Alloc(32<<20, 256)
	dst := host.Alloc(32<<20, 256)
	link := e.NewLink("pcie.d2h", 10, 2*sim.Microsecond)
	mem.FillPattern(src, 9)
	var dur sim.Time
	e.Spawn("host", func(p *sim.Proc) {
		s := d.NewStream("s")
		k := contigKernel(VectorKernel, src, dst, 65536)
		t0 := p.Now()
		d.LaunchZeroCopy(s, k, link, k.Bytes()).Await(p)
		dur = p.Now() - t0
	})
	e.Run()
	if !mem.Equal(src, dst) {
		t.Fatal("zero-copy kernel did not move data")
	}
	wire := sim.TimeForBytes(32<<20, 10)
	if dur < wire {
		t.Fatalf("faster than the wire: %v < %v", dur, wire)
	}
	if dur > wire+wire/5 {
		t.Fatalf("too slow: %v vs wire %v", dur, wire)
	}
}

func TestKernelTimeMatchesLaunch(t *testing.T) {
	e, d := newDev(t)
	src := d.Mem().Alloc(4<<20, 256)
	dst := d.Mem().Alloc(4<<20, 256)
	k := contigKernel(DEVKernel, src, dst, 2048)
	want := d.Params().KernelLaunch + d.KernelTime(k)
	var dur sim.Time
	e.Spawn("host", func(p *sim.Proc) {
		s := d.NewStream("s")
		t0 := p.Now()
		d.Launch(s, k).Await(p)
		dur = p.Now() - t0
	})
	e.Run()
	if dur != want {
		t.Fatalf("dur = %v, want %v", dur, want)
	}
}

func TestAvailableBlocks(t *testing.T) {
	_, d := newDev(t)
	if got := d.availableBlocks(0); got != d.Params().DefaultBlocks {
		t.Fatalf("default = %d", got)
	}
	if got := d.availableBlocks(5); got != 5 {
		t.Fatalf("requested 5 = %d", got)
	}
	d.SetBlockCap(3)
	if got := d.availableBlocks(5); got != 3 {
		t.Fatalf("capped = %d", got)
	}
	d.SetBackgroundLoad(d.Params().DefaultBlocks, 0)
	if got := d.availableBlocks(0); got != 1 {
		t.Fatalf("fully loaded = %d", got)
	}
}

func TestComputeKernelChargesDRAM(t *testing.T) {
	e, d := newDev(t)
	var dur sim.Time
	e.Spawn("host", func(p *sim.Proc) {
		s := d.NewStream("s")
		t0 := p.Now()
		d.Compute(s, 38<<20, 0).Await(p) // ~38 MB raw at 380 GB/s = 100us
		dur = p.Now() - t0
	})
	e.Run()
	want := d.Params().KernelLaunch + sim.TimeForBytes(38<<20, d.Params().DRAMRawGBps)
	if dur != want {
		t.Fatalf("dur = %v, want %v", dur, want)
	}
	if d.KernelsRun() != 1 {
		t.Fatalf("kernelsRun = %d", d.KernelsRun())
	}
}

func TestKernelBytesAccounting(t *testing.T) {
	_, d := newDev(t)
	src := d.Mem().Alloc(10000, 256)
	dst := d.Mem().Alloc(10000, 256)
	k := contigKernel(DEVKernel, src, dst, 1024)
	if k.Bytes() != 10000 {
		t.Fatalf("Bytes = %d", k.Bytes())
	}
}
