// Package model is the modelled-payload mode of the scale sweep: a
// flyweight re-implementation of the scale collectives (flat and
// hierarchical alltoall/allgather) on the sharded discrete-event
// engine, sized for 16k+ ranks.
//
// Where an mpi.World gives every rank a goroutine, device buffers and
// the full protocol stack, a model world gives every rank a few dozen
// bytes of state machine and replaces payload bytes with
// mpi.SyntheticPayload generators: a message carries (kind, from,
// round, bytes, signature) and nothing else. Correctness is still
// checked end to end —
//
//   - every expected inbound block is marked exactly once in a
//     per-sampled-rank cover bitset (duplicates and omissions panic);
//   - messages addressed to sampled ranks carry a 64-bit content
//     signature computed by the sender from its own payload generator,
//     and the receiver independently recomputes and compares it;
//   - the final Result.Digest is the sha256 of the sampled ranks'
//     reconstructed packed receive images, byte-comparable with the
//     digest a real mpi.World produces for the same collective when
//     its buffers are filled with the same SyntheticPayload seeds.
//
// Timing uses the same first-order cost model everywhere: a per-message
// posting overhead plus a pack/unpack charge on each side, then link
// serialization on the shared resources the message crosses (node NIC
// tx/rx, the leaf uplink/downlink chosen by (srcNode+dstNode) % spines,
// or the intra-node bus). Ranks are partitioned across engine shards by
// fat-tree leaf, and the leaf-to-spine hop provides the conservative
// lookahead, so virtual times are byte-identical for any shard count.
package model

import (
	"crypto/sha256"
	"fmt"
	"unsafe"

	"gpuddt/internal/cluster"
	"gpuddt/internal/datatype"
	"gpuddt/internal/ib"
	"gpuddt/internal/mpi"
	"gpuddt/internal/pcie"
	"gpuddt/internal/sim"
)

// Seed bases shared with the real-payload arm (internal/bench fills
// real buffers from the same bases, which is what makes the two
// digests comparable).
const (
	SeedAllgather = 2000 // + contributing rank
	SeedAlltoall  = 3000 // + sending rank (whole send buffer)
)

// Calibration constants of the first-order cost model. The protocol
// constants (eager limit, AM latency) mirror the mpi defaults; the
// pack constants approximate a GPU pack kernel (launch overhead plus
// streaming rate) rather than re-simulating the pipeline.
const (
	modelEager     = 64 << 10             // mpi Proto.EagerLimit default
	modelAMLatency = 500 * sim.Nanosecond // intra-node active-message hop
	packLaunch     = 5 * sim.Microsecond  // per-message pack/unpack kernel launch
	packGBps       = 60.0                 // pack/unpack streaming rate
	busGBpsDefault = 10.0                 // intra-node bus (PCIe root complex)
	chaosRetryBase = 25 * sim.Microsecond // first retry backoff
	chaosMaxRetry  = 6
)

// Options configures one modelled collective.
type Options struct {
	// Spec is the cluster shape; it must carry a fat-tree topology
	// (cluster.Scale does).
	Spec cluster.Spec

	// Coll is "alltoall" or "allgather".
	Coll string

	// Flat selects the flat single-level schedule instead of the
	// hierarchical leader-based one.
	Flat bool

	// Shards is the requested engine shard count (clamped to the number
	// of fat-tree leaves; 0 = 1).
	Shards int

	// Dt and Count describe one rank's per-peer contribution.
	Dt    *datatype.Datatype
	Count int

	// SampleRanks bounds how many ranks get full content verification
	// (cover bitsets, message signatures, digest contribution). 0 or
	// >= world size means every rank.
	SampleRanks int

	// ChaosRate injects deterministic pseudo-random send retries with
	// this probability per attempt (0 disables). Retries perturb
	// timing, never content — the digest must be unchanged.
	ChaosRate float64
	ChaosSeed uint64

	// RecordSpans emits one per-rank completion span on the engine's
	// lock-free span log (off by default: 16k spans are cheap, but the
	// byte-identity gate compares Results, not logs).
	RecordSpans bool
}

// Result is the outcome of a modelled collective.
type Result struct {
	// Time is the virtual completion time (max over ranks).
	Time sim.Time

	// Digest is the sha256 over the sampled ranks' packed receive
	// images, ascending rank order. With SampleRanks=0 it equals the
	// digest of a real-payload run of the same collective.
	Digest [32]byte

	// Sampled lists the verified ranks.
	Sampled []int

	// Shards is the effective shard count used.
	Shards int

	// Lookahead is the conservative window width used.
	Lookahead sim.Time

	// Messages, Events, Faults, SigChecks count modelled messages,
	// dispatched engine events, injected chaos retries, and verified
	// message signatures.
	Messages  int64
	Events    int64
	Faults    int64
	SigChecks int64

	// StateBytes is the deterministic structural memory of the world:
	// rank state machines, per-resource clocks, cover bitsets and the
	// peak event heap. This is the flyweight counterpart of a real
	// world's FootprintBytes.
	StateBytes int64

	// HeapPeak is the largest single-shard pending-event count.
	HeapPeak int

	// Spans is the merged span log (only when RecordSpans).
	Spans []sim.ShardSpan
}

// MemPerRank returns StateBytes divided by the world size.
func (r Result) MemPerRank(p int) int64 {
	if p <= 0 {
		return 0
	}
	return r.StateBytes / int64(p)
}

// world is the flyweight simulation state. Everything indexed by rank,
// node or link is owned by the shard that owns the corresponding
// actor's leaf, so handlers touch it without locks.
type world struct {
	o     Options
	se    *sim.ShardedEngine
	ranks []rankSM

	p, nodes, rpn int
	radix, spines int
	leaves, eff   int
	b             int64 // packed bytes of one per-peer block
	dt            *datatype.Datatype
	count         int

	// calibration
	wire, upBw, busBw float64
	lat, hopLat       sim.Time
	overhead          sim.Time

	// per-rank clocks (owned by the rank's shard)
	cpu      []sim.Time
	lastSend []sim.Time
	doneAt   []sim.Time
	msgSeq   []uint32

	// per-resource next-free times. nodeTx/nodeRx/bus are owned by the
	// node's shard; up[leaf*spines+s] by the source leaf's shard;
	// down[leaf*spines+s] by the destination leaf's shard.
	nodeTx, nodeRx, bus []sim.Time
	up, down            []sim.Time

	// verification state
	sampled    []bool
	sampleList []int
	cover      [][]uint64 // nil for unsampled ranks
	covered    []int32
	colSig     []uint64 // hier-alltoall column signatures, lazily cached
	fullSigAG  uint64   // hier-allgather full-buffer signature

	// per-shard statistics (owner-written, merged after Run)
	shardMsgs   []int64
	shardFaults []int64
	shardSigs   []int64
}

// Run executes one modelled collective and returns its Result. It
// panics on any correctness violation (signature mismatch, duplicate
// or missing block, cross-shard lookahead violation) — those are model
// bugs, not runtime conditions — and returns an error only for
// unusable Options.
func Run(o Options) (Result, error) {
	w, err := build(o)
	if err != nil {
		return Result{}, err
	}
	w.se.Run()
	return w.finalize()
}

func build(o Options) (*world, error) {
	if o.Coll != "alltoall" && o.Coll != "allgather" {
		return nil, fmt.Errorf("model: unknown collective %q", o.Coll)
	}
	if o.Dt == nil {
		return nil, fmt.Errorf("model: Options.Dt is required")
	}
	if o.Count <= 0 {
		return nil, fmt.Errorf("model: Options.Count must be positive")
	}
	spec := o.Spec
	nodes := spec.Nodes
	if nodes == 0 {
		nodes = 1
	}
	gpn := spec.GPUsPerNode
	if gpn == 0 {
		gpn = 1
	}
	rpn := spec.RanksPerNode
	if rpn == 0 {
		rpn = gpn
	}
	ibp := spec.IB
	def := ib.DefaultParams()
	if ibp.WireGBps <= 0 {
		ibp.WireGBps = def.WireGBps
	}
	if ibp.Latency <= 0 {
		ibp.Latency = def.Latency
	}
	if ibp.PerMsgOverhead <= 0 {
		ibp.PerMsgOverhead = def.PerMsgOverhead
	}
	topo := ibp.Topo
	if !topo.Hierarchical() {
		return nil, fmt.Errorf("model: spec %v has no fat-tree topology (use cluster.Scale)", spec)
	}
	if topo.Spines <= 0 {
		topo.Spines = topo.LeafRadix
	}
	if topo.UplinkGBps <= 0 {
		topo.UplinkGBps = ibp.WireGBps
	}
	if topo.HopLatency <= 0 {
		topo.HopLatency = ibp.Latency / 2
	}
	busBw := spec.PCIe.RootGBps
	if busBw <= 0 {
		busBw = pcie.DefaultParams().RootGBps
		if busBw <= 0 {
			busBw = busGBpsDefault
		}
	}
	w := &world{
		o:      o,
		p:      nodes * rpn,
		nodes:  nodes,
		rpn:    rpn,
		radix:  topo.LeafRadix,
		spines: topo.Spines,
		dt:     o.Dt,
		count:  o.Count,
		b:      int64(o.Count) * o.Dt.Size(),

		wire:     ibp.WireGBps,
		upBw:     topo.UplinkGBps,
		busBw:    busBw,
		lat:      ibp.Latency,
		hopLat:   topo.HopLatency,
		overhead: ibp.PerMsgOverhead,
	}
	if w.upBw > w.wire {
		w.upBw = w.wire
	}
	w.leaves = (nodes + w.radix - 1) / w.radix
	w.eff = o.Shards
	if w.eff == 0 {
		w.eff = spec.Shards // a cluster.ScaleModelled spec carries the shard count
	}
	if w.eff < 1 {
		w.eff = 1
	}
	if w.eff > w.leaves {
		w.eff = w.leaves
	}
	lookahead := w.lat/2 + w.hopLat

	w.cpu = make([]sim.Time, w.p)
	w.lastSend = make([]sim.Time, w.p)
	w.doneAt = make([]sim.Time, w.p)
	w.msgSeq = make([]uint32, w.p)
	w.nodeTx = make([]sim.Time, nodes)
	w.nodeRx = make([]sim.Time, nodes)
	w.bus = make([]sim.Time, nodes)
	w.up = make([]sim.Time, w.leaves*w.spines)
	w.down = make([]sim.Time, w.leaves*w.spines)
	w.sampled = make([]bool, w.p)
	w.cover = make([][]uint64, w.p)
	w.covered = make([]int32, w.p)
	w.shardMsgs = make([]int64, w.eff)
	w.shardFaults = make([]int64, w.eff)
	w.shardSigs = make([]int64, w.eff)

	n := o.SampleRanks
	if n <= 0 || n >= w.p {
		n = w.p
	}
	words := (w.p + 63) / 64
	for i := 0; i < n; i++ {
		// Evenly spread samples so every leaf and both leader/member
		// roles appear in the verified set.
		r := i * w.p / n
		if w.sampled[r] {
			continue
		}
		w.sampled[r] = true
		w.sampleList = append(w.sampleList, r)
		w.cover[r] = make([]uint64, words)
	}

	if o.Coll == "alltoall" && !o.Flat {
		w.colSig = make([]uint64, w.p)
	}
	if o.Coll == "allgather" && !o.Flat && len(w.sampleList) > 0 && rpn > 1 {
		var s mpi.Sig64
		for g := 0; g < w.p; g++ {
			w.payAG(g).WritePacked(&s, 0, w.count)
		}
		w.fullSigAG = s.Sum64()
	}

	w.se = sim.NewShardedEngine(w.eff, lookahead)
	w.ranks = make([]rankSM, w.p)
	for r := 0; r < w.p; r++ {
		node := r / rpn
		a := &w.ranks[r]
		*a = rankSM{
			w:    w,
			r:    sim.ActorID(r),
			node: node,
			li:   r % rpn,
			lead: sim.ActorID(node * rpn),
		}
		id := w.se.AddActor(w.shardOfNode(node), a)
		if int(id) != r {
			panic("model: actor id drifted from rank")
		}
	}
	for r := 0; r < w.p; r++ {
		w.se.Post(0, sim.Event{To: sim.ActorID(r), Kind: kStart})
	}
	return w, nil
}

// shardOfNode maps a node's leaf to a shard block (leaf*eff/leaves),
// keeping whole leaves on one shard so only spine-crossing traffic is
// ever cross-shard.
func (w *world) shardOfNode(node int) int {
	return (node / w.radix) * w.eff / w.leaves
}

func (w *world) nodeOf(r sim.ActorID) int { return int(r) / w.rpn }

func (w *world) payA2A(r int) mpi.SyntheticPayload {
	return mpi.SyntheticPayload{Seed: SeedAlltoall + uint64(r), Dt: w.dt, Count: w.p * w.count}
}

func (w *world) payAG(r int) mpi.SyntheticPayload {
	return mpi.SyntheticPayload{Seed: SeedAllgather + uint64(r), Dt: w.dt, Count: w.count}
}

// packCost charges a pack or unpack of n bytes (kernel launch plus
// streaming).
func (w *world) packCost(n int64) sim.Time {
	return packLaunch + sim.TimeForBytes(n, packGBps)
}

// chaosDelay deterministically perturbs a send with retry backoff.
// The hash depends only on (seed, sender, per-sender message sequence,
// attempt) — simulation history, never shard scheduling — so chaos
// worlds stay byte-identical across shard counts.
func (w *world) chaosDelay(sc *sim.ShardCtx, from sim.ActorID) sim.Time {
	seq := w.msgSeq[from]
	w.msgSeq[from]++
	var d sim.Time
	for att := 0; att < chaosMaxRetry; att++ {
		h := mix64(w.o.ChaosSeed ^ uint64(from)<<32 ^ uint64(seq)<<8 ^ uint64(att))
		if float64(h>>11)/float64(1<<53) >= w.o.ChaosRate {
			break
		}
		d += chaosRetryBase << uint(att)
		w.shardFaults[sc.Shard()]++
	}
	return d
}

func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// send models one point-to-point message: sender-side posting overhead
// and pack, optional chaos retries and rendezvous round trip, then
// serialization on the shared resources along the path. Delivery posts
// a single event to the receiving rank; spine-crossing messages post a
// relay event at the destination leaf first (arriving exactly one
// lookahead later, which is what licenses the cross-shard post).
func (w *world) send(sc *sim.ShardCtx, from, to sim.ActorID, kind, round int32, bytes int64) {
	now := sc.Now()
	st := w.cpu[from]
	if now > st {
		st = now
	}
	if ls := w.lastSend[from]; ls > st {
		st = ls
	}
	st += w.overhead + w.packCost(bytes)
	if w.o.ChaosRate > 0 {
		st += w.chaosDelay(sc, from)
	}
	var sig uint64
	if w.sampled[to] {
		sig = w.msgSig(kind, from, to, round)
	}
	w.shardMsgs[sc.Shard()]++
	ev := sim.Event{To: to, Kind: kind, From: from, Round: round, A: bytes, Sig: sig}
	sn, dn := w.nodeOf(from), w.nodeOf(to)

	if sn == dn {
		// Intra-node: active message over the shared bus.
		if bytes > modelEager {
			st += 2 * modelAMLatency // rendezvous handshake
		}
		bs := st
		if w.bus[sn] > bs {
			bs = w.bus[sn]
		}
		end := bs + sim.TimeForBytes(bytes, w.busBw)
		w.bus[sn] = end
		w.cpu[from] = st
		w.lastSend[from] = end
		sc.Post(end+modelAMLatency-now, ev)
		return
	}

	sl, dl := sn/w.radix, dn/w.radix
	if sl == dl {
		// Same leaf: one switch, source NIC tx and destination NIC rx.
		if bytes > modelEager {
			st += 2 * w.lat
		}
		ts := st
		if w.nodeTx[sn] > ts {
			ts = w.nodeTx[sn]
		}
		if w.nodeRx[dn] > ts {
			ts = w.nodeRx[dn]
		}
		end := ts + sim.TimeForBytes(bytes, w.wire)
		w.nodeTx[sn], w.nodeRx[dn] = end, end
		w.cpu[from] = st
		w.lastSend[from] = end
		sc.Post(end+w.lat-now, ev)
		return
	}

	// Spine-crossing: source NIC tx and the (leaf, spine) uplink are
	// owned here; the downlink and destination NIC are owned by the
	// destination leaf's shard and charged in the relay stage.
	if bytes > modelEager {
		st += 2 * (w.lat + 2*w.hopLat)
	}
	spine := (sn + dn) % w.spines
	ul := sl*w.spines + spine
	ts := st
	if w.nodeTx[sn] > ts {
		ts = w.nodeTx[sn]
	}
	if w.up[ul] > ts {
		ts = w.up[ul]
	}
	end := ts + sim.TimeForBytes(bytes, w.upBw)
	w.nodeTx[sn], w.up[ul] = end, end
	w.cpu[from] = st
	w.lastSend[from] = end
	ev.B = 1 // relay pending at the destination leaf
	sc.Post(end+w.lat/2+w.hopLat-now, ev)
}

// relay is the destination-leaf half of a spine-crossing message: it
// serializes on the downlink and destination NIC and re-posts the
// delivery locally.
func (w *world) relay(sc *sim.ShardCtx, ev sim.Event) {
	now := sc.Now()
	sn, dn := w.nodeOf(ev.From), w.nodeOf(ev.To)
	spine := (sn + dn) % w.spines
	dlink := (dn/w.radix)*w.spines + spine
	ts := now
	if w.down[dlink] > ts {
		ts = w.down[dlink]
	}
	if w.nodeRx[dn] > ts {
		ts = w.nodeRx[dn]
	}
	end := ts + sim.TimeForBytes(ev.A, w.upBw)
	w.down[dlink], w.nodeRx[dn] = end, end
	ev.B = 0
	sc.Post(end+w.hopLat+w.lat/2-now, ev)
}

// arrive charges the receive-side unpack and advances the rank's CPU
// clock.
func (w *world) arrive(sc *sim.ShardCtx, r sim.ActorID, bytes int64) {
	t := sc.Now()
	if w.cpu[r] > t {
		t = w.cpu[r]
	}
	w.cpu[r] = t + w.packCost(bytes)
}

// mark records that sampled rank r received the block contributed by
// global source src, panicking on duplicates.
func (w *world) mark(r sim.ActorID, src int) {
	bits := w.cover[r]
	if bits == nil {
		return
	}
	word, bit := src>>6, uint(src&63)
	if bits[word]&(1<<bit) != 0 {
		panic(fmt.Sprintf("model: rank %d received block %d twice", r, src))
	}
	bits[word] |= 1 << bit
	w.covered[r]++
}

// msgSig computes the content signature for a message. Sender and a
// sampled receiver evaluate the same pure function of (kind, from, to,
// round) against their own payload generators; a mismatch means the
// modelled schedule moved the wrong bytes.
func (w *world) msgSig(kind int32, from, to sim.ActorID, round int32) uint64 {
	switch kind {
	case kA2A:
		// Flat alltoall: sender's block for destination `to`.
		return w.payA2A(int(from)).PackedSig(int(to)*w.count, w.count)
	case kAG:
		// Flat allgather ring: the block originated by (from - round).
		origin := (int(from) - int(round)%w.p + w.p) % w.p
		return w.payAG(origin).PackedSig(0, w.count)
	case kA2AIn:
		// Hier alltoall gather: member's whole send buffer.
		return w.payA2A(int(from)).PackedSig(0, w.p*w.count)
	case kA2ANode:
		// Hier alltoall node pair: source node's blocks for every rank
		// on the destination node, member-major.
		sn, dn := w.nodeOf(from), w.nodeOf(to)
		var s mpi.Sig64
		for li := 0; li < w.rpn; li++ {
			w.payA2A(sn*w.rpn + li).WritePacked(&s, dn*w.rpn*w.count, w.rpn*w.count)
		}
		return s.Sum64()
	case kA2ACol:
		return w.colSigA2A(int(to))
	case kAGIn:
		// Hier allgather gather: member's contribution.
		return w.payAG(int(from)).PackedSig(0, w.count)
	case kAGSlab:
		// Hier allgather ring: the node slab originated by node
		// (fromNode - round), member-major.
		q := (w.nodeOf(from) - int(round)%w.nodes + w.nodes) % w.nodes
		var s mpi.Sig64
		for li := 0; li < w.rpn; li++ {
			w.payAG(q*w.rpn + li).WritePacked(&s, 0, w.count)
		}
		return s.Sum64()
	case kAGBcast:
		return w.fullSigAG
	}
	panic(fmt.Sprintf("model: msgSig of unknown kind %d", kind))
}

// colSigA2A returns (caching) the signature of hier-alltoall's phase-3
// column for destination rank dst: source-rank-major, every rank's
// block addressed to dst. Each cache entry is touched only by dst's
// own shard (the leader and its members share a node), so the lazy
// fill is race-free.
func (w *world) colSigA2A(dst int) uint64 {
	if s := w.colSig[dst]; s != 0 {
		return s
	}
	var s mpi.Sig64
	for g := 0; g < w.p; g++ {
		w.payA2A(g).WritePacked(&s, dst*w.count, w.count)
	}
	sig := s.Sum64()
	w.colSig[dst] = sig
	return sig
}

// verify recomputes an inbound message's signature at a sampled rank.
func (w *world) verify(sc *sim.ShardCtx, r sim.ActorID, ev sim.Event) {
	if !w.sampled[r] {
		return
	}
	if want := w.msgSig(ev.Kind, ev.From, r, ev.Round); want != ev.Sig {
		panic(fmt.Sprintf("model: signature mismatch on kind %d %d->%d round %d: sender %#x receiver %#x",
			ev.Kind, ev.From, r, ev.Round, ev.Sig, want))
	}
	w.shardSigs[sc.Shard()]++
}

func (w *world) finalize() (Result, error) {
	res := Result{
		Shards:    w.eff,
		Lookahead: w.se.Lookahead(),
		Events:    w.se.Events(),
		HeapPeak:  w.se.HeapPeak(),
		Sampled:   w.sampleList,
	}
	for i := 0; i < w.eff; i++ {
		res.Messages += w.shardMsgs[i]
		res.Faults += w.shardFaults[i]
		res.SigChecks += w.shardSigs[i]
	}
	for r := 0; r < w.p; r++ {
		if !w.ranks[r].done {
			return Result{}, fmt.Errorf("model: rank %d never completed (deadlocked schedule)", r)
		}
		if w.doneAt[r] > res.Time {
			res.Time = w.doneAt[r]
		}
	}
	for _, r := range w.sampleList {
		if int(w.covered[r]) != w.p {
			return Result{}, fmt.Errorf("model: rank %d image incomplete: %d of %d blocks", r, w.covered[r], w.p)
		}
	}
	h := sha256.New()
	for _, r := range w.sampleList {
		for g := 0; g < w.p; g++ {
			if w.o.Coll == "alltoall" {
				w.payA2A(g).WritePacked(h, r*w.count, w.count)
			} else {
				w.payAG(g).WritePacked(h, 0, w.count)
			}
		}
	}
	h.Sum(res.Digest[:0])
	res.StateBytes = w.footprint()
	if w.o.RecordSpans {
		res.Spans = w.se.Spans()
	}
	return res, nil
}

// footprint deterministically accounts the world's structural memory:
// the flyweight per-rank cost the 16k sweep reports.
func (w *world) footprint() int64 {
	const tsz = int64(unsafe.Sizeof(sim.Time(0)))
	n := int64(len(w.ranks)) * int64(unsafe.Sizeof(rankSM{}))
	n += int64(len(w.cpu)+len(w.lastSend)+len(w.doneAt)) * tsz
	n += int64(len(w.msgSeq)) * 4
	n += int64(len(w.nodeTx)+len(w.nodeRx)+len(w.bus)+len(w.up)+len(w.down)) * tsz
	n += int64(len(w.sampled)) + int64(len(w.covered))*4
	for _, c := range w.cover {
		n += int64(len(c)) * 8
	}
	n += int64(len(w.colSig)) * 8
	n += int64(w.se.HeapPeak()) * int64(unsafe.Sizeof(sim.Event{}))
	return n
}

// pair returns the round-s exchange partners of rank r among n peers:
// the recursive-doubling XOR pairing when n is a power of two, the
// shifted ring otherwise (the same pairing the real pairwise schedules
// use).
func pair(n, r, s int) (to, from int) {
	if n&(n-1) == 0 {
		t := r ^ s
		return t, t
	}
	return (r + s) % n, (r - s + n) % n
}
