package model

import (
	"testing"

	"gpuddt/internal/cluster"
	"gpuddt/internal/shapes"
)

// testOptions is a 128-rank world on 8 fat-tree leaves (64 nodes x 2
// ranks), big enough that every schedule phase and both leader/member
// roles occur, small enough for -race.
func testOptions(coll string, flat bool, shards int) Options {
	return Options{
		Spec:   cluster.Scale(64, 1, 2, 2),
		Coll:   coll,
		Flat:   flat,
		Shards: shards,
		Dt:     shapes.SubMatrix(16, 8, 12),
		Count:  2,
	}
}

func mustRun(t *testing.T, o Options) Result {
	t.Helper()
	res, err := Run(o)
	if err != nil {
		t.Fatalf("model.Run(%s flat=%v shards=%d): %v", o.Coll, o.Flat, o.Shards, err)
	}
	return res
}

// TestModelDeterminism is the tentpole gate: for every collective and
// schedule, the sharded engine must produce byte-identical virtual
// times and digests to the serial (Shards=1) engine, for every shard
// count.
func TestModelDeterminism(t *testing.T) {
	for _, coll := range []string{"alltoall", "allgather"} {
		for _, flat := range []bool{true, false} {
			ref := mustRun(t, testOptions(coll, flat, 1))
			if ref.Shards != 1 {
				t.Fatalf("reference run used %d shards", ref.Shards)
			}
			if ref.Messages == 0 || ref.Events == 0 {
				t.Fatalf("%s flat=%v: empty run (%d msgs, %d events)", coll, flat, ref.Messages, ref.Events)
			}
			for _, shards := range []int{2, 4, 8} {
				got := mustRun(t, testOptions(coll, flat, shards))
				if got.Shards != shards {
					t.Fatalf("%s flat=%v: wanted %d shards, engine used %d", coll, flat, shards, got.Shards)
				}
				if got.Time != ref.Time {
					t.Errorf("%s flat=%v shards=%d: time %v != serial %v", coll, flat, shards, got.Time, ref.Time)
				}
				if got.Digest != ref.Digest {
					t.Errorf("%s flat=%v shards=%d: digest diverged from serial", coll, flat, shards)
				}
				if got.Messages != ref.Messages || got.Events != ref.Events {
					t.Errorf("%s flat=%v shards=%d: %d msgs/%d events != serial %d/%d",
						coll, flat, shards, got.Messages, got.Events, ref.Messages, ref.Events)
				}
			}
		}
	}
}

// TestModelChaosDeterminism: deterministic fault injection perturbs
// timing identically on every shard count, and never content.
func TestModelChaosDeterminism(t *testing.T) {
	clean := mustRun(t, testOptions("alltoall", true, 1))
	o := testOptions("alltoall", true, 1)
	o.ChaosRate = 0.05
	o.ChaosSeed = 17
	ref := mustRun(t, o)
	if ref.Faults == 0 {
		t.Fatal("chaos run injected no faults")
	}
	if ref.Time <= clean.Time {
		t.Fatalf("chaos run (%v) not slower than clean run (%v)", ref.Time, clean.Time)
	}
	if ref.Digest != clean.Digest {
		t.Fatal("chaos perturbed content, not just timing")
	}
	for _, shards := range []int{2, 8} {
		o.Shards = shards
		got := mustRun(t, o)
		if got.Time != ref.Time || got.Digest != ref.Digest || got.Faults != ref.Faults {
			t.Fatalf("chaos world diverged at %d shards: time %v vs %v, faults %d vs %d",
				shards, got.Time, ref.Time, got.Faults, ref.Faults)
		}
	}
}

// TestModelHierFlatSameImage: the hierarchical and flat schedules are
// different routes to the same result — full-sample digests must match.
func TestModelHierFlatSameImage(t *testing.T) {
	for _, coll := range []string{"alltoall", "allgather"} {
		flat := mustRun(t, testOptions(coll, true, 4))
		hier := mustRun(t, testOptions(coll, false, 4))
		if flat.Digest != hier.Digest {
			t.Errorf("%s: flat and hier digests differ", coll)
		}
		if hier.Time >= flat.Time {
			// Not a correctness property, but at these shapes the
			// leader schedules exist to win; a regression here means
			// the model lost its message-aggregation structure.
			t.Errorf("%s: hier (%v) not faster than flat (%v)", coll, hier.Time, flat.Time)
		}
	}
}

// TestModelSampling: a sampled run must verify the sampled subset and
// be deterministic, and sampling must not change virtual time.
func TestModelSampling(t *testing.T) {
	full := mustRun(t, testOptions("alltoall", false, 4))
	o := testOptions("alltoall", false, 4)
	o.SampleRanks = 16
	sub := mustRun(t, o)
	if len(sub.Sampled) != 16 {
		t.Fatalf("sampled %d ranks, want 16", len(sub.Sampled))
	}
	if sub.Time != full.Time {
		t.Fatalf("sampling changed virtual time: %v vs %v", sub.Time, full.Time)
	}
	if sub.Digest == full.Digest {
		t.Fatal("16-rank digest cannot equal 128-rank digest")
	}
	if sub.SigChecks == 0 || sub.SigChecks >= full.SigChecks {
		t.Fatalf("sampled run verified %d signatures, full run %d", sub.SigChecks, full.SigChecks)
	}
	again := mustRun(t, o)
	if again.Digest != sub.Digest {
		t.Fatal("sampled digest not reproducible")
	}
}

// TestModelSpans: RecordSpans yields one completion span per rank on
// the merged lock-free log.
func TestModelSpans(t *testing.T) {
	o := testOptions("allgather", false, 4)
	o.RecordSpans = true
	res := mustRun(t, o)
	if len(res.Spans) != o.Spec.Size() {
		t.Fatalf("%d spans, want %d", len(res.Spans), o.Spec.Size())
	}
	for _, sp := range res.Spans {
		if sp.End <= 0 || sp.End > res.Time {
			t.Fatalf("span end %v outside (0, %v]", sp.End, res.Time)
		}
	}
}

// TestModelStateBytes: the flyweight claim in numbers — per-rank
// structural state must stay in the low-KB range.
func TestModelStateBytes(t *testing.T) {
	res := mustRun(t, testOptions("alltoall", false, 4))
	per := res.MemPerRank(128)
	if per <= 0 || per > 64<<10 {
		t.Fatalf("per-rank state %d bytes, want (0, 64KiB]", per)
	}
}

// TestModelOptionErrors: unusable Options are errors, not panics.
func TestModelOptionErrors(t *testing.T) {
	good := testOptions("alltoall", true, 1)
	bad := good
	bad.Coll = "reduce"
	if _, err := Run(bad); err == nil {
		t.Error("unknown collective accepted")
	}
	bad = good
	bad.Dt = nil
	if _, err := Run(bad); err == nil {
		t.Error("nil datatype accepted")
	}
	bad = good
	bad.Spec = cluster.Spec{Nodes: 4, GPUsPerNode: 1}
	if _, err := Run(bad); err == nil {
		t.Error("flat-fabric spec accepted")
	}
}
