package model

import (
	"fmt"

	"gpuddt/internal/sim"
)

// Event kinds. kStart seeds every rank at t=0; everything else is a
// modelled message whose schedule role the receiver decodes from
// (Kind, From, Round).
const (
	kStart int32 = iota + 1
	kA2A         // flat alltoall: pairwise round payload
	kAG          // flat allgather: ring hop payload
	kA2AIn       // hier alltoall: member's whole send buffer -> leader
	kA2ANode     // hier alltoall: leader<->leader node block
	kA2ACol      // hier alltoall: leader -> member result column
	kAGIn        // hier allgather: member contribution -> leader
	kAGSlab      // hier allgather: leader ring node slab
	kAGBcast     // hier allgather: assembled buffer down the node tree
)

// rankSM is one rank's flyweight state machine: the entire per-rank
// footprint of a modelled world (compare with a real rank's goroutine,
// stacks and device buffers). The schedules mirror internal/mpi —
// flat pairwise alltoall and ring allgather, and the hierarchical
// leader-based variants of hcoll.go — so the modelled message pattern
// is the one the real worlds execute.
type rankSM struct {
	w    *world
	r    sim.ActorID
	node int
	li   int         // index within the node (0 = leader)
	lead sim.ActorID // node leader's rank

	round int32
	gotIn int32
	pend  map[int32]struct{}
	done  bool
}

// HandleEvent dispatches relay stages and the collective's schedule.
func (a *rankSM) HandleEvent(sc *sim.ShardCtx, ev sim.Event) {
	if ev.B == 1 {
		a.w.relay(sc, ev)
		return
	}
	if a.w.o.Coll == "alltoall" {
		if a.w.o.Flat {
			a.a2aFlat(sc, ev)
		} else {
			a.a2aHier(sc, ev)
		}
		return
	}
	if a.w.o.Flat {
		a.agFlat(sc, ev)
	} else {
		a.agHier(sc, ev)
	}
}

// finish records the rank's completion time: the later of its CPU
// clock and its last injected send.
func (a *rankSM) finish(sc *sim.ShardCtx) {
	w := a.w
	d := w.cpu[a.r]
	if w.lastSend[a.r] > d {
		d = w.lastSend[a.r]
	}
	if t := sc.Now(); t > d {
		d = t
	}
	w.doneAt[a.r] = d
	a.done = true
	if w.o.RecordSpans {
		sc.Span("rank", w.o.Coll, 0, d, int64(w.p)*w.b)
	}
}

// pendSet/pendHas/pendClear track out-of-order round arrivals (the
// pairwise and ring schedules complete round s only after the round-s
// message arrives, but the network may deliver s+1 first).
func (a *rankSM) pendSet(s int32) {
	if a.pend == nil {
		a.pend = make(map[int32]struct{}, 4)
	}
	a.pend[s] = struct{}{}
}

func (a *rankSM) pendHas(s int32) bool {
	_, ok := a.pend[s]
	return ok
}

func (a *rankSM) pendClear(s int32) { delete(a.pend, s) }

// --- flat alltoall: pairwise exchange -------------------------------

func (a *rankSM) a2aFlat(sc *sim.ShardCtx, ev sim.Event) {
	w := a.w
	switch ev.Kind {
	case kStart:
		// Local copy of the self block, then round 1.
		w.mark(a.r, int(a.r))
		w.cpu[a.r] = sc.Now() + 2*w.packCost(w.b)
		if w.p == 1 {
			a.finish(sc)
			return
		}
		a.round = 1
		a.sendA2A(sc, 1)
	case kA2A:
		w.arrive(sc, a.r, ev.A)
		w.verify(sc, a.r, ev)
		w.mark(a.r, int(ev.From))
		a.pendSet(ev.Round)
		for a.pendHas(a.round) {
			a.pendClear(a.round)
			a.round++
			if int(a.round) < w.p {
				a.sendA2A(sc, a.round)
			} else {
				a.finish(sc)
			}
		}
	default:
		panic(fmt.Sprintf("model: flat alltoall rank %d got kind %d", a.r, ev.Kind))
	}
}

func (a *rankSM) sendA2A(sc *sim.ShardCtx, s int32) {
	w := a.w
	to, _ := pair(w.p, int(a.r), int(s))
	w.send(sc, a.r, sim.ActorID(to), kA2A, s, w.b)
}

// --- flat allgather: ring -------------------------------------------

func (a *rankSM) agFlat(sc *sim.ShardCtx, ev sim.Event) {
	w := a.w
	switch ev.Kind {
	case kStart:
		w.mark(a.r, int(a.r))
		if w.p == 1 {
			a.finish(sc)
			return
		}
		a.round = 0
		a.sendAG(sc, 0)
	case kAG:
		w.arrive(sc, a.r, ev.A)
		w.verify(sc, a.r, ev)
		origin := (int(ev.From) - int(ev.Round)%w.p + w.p) % w.p
		w.mark(a.r, origin)
		a.pendSet(ev.Round)
		for a.pendHas(a.round) {
			a.pendClear(a.round)
			a.round++
			if a.round <= int32safe(w.p-2) {
				a.sendAG(sc, a.round)
			} else {
				a.finish(sc)
			}
		}
	default:
		panic(fmt.Sprintf("model: flat allgather rank %d got kind %d", a.r, ev.Kind))
	}
}

func (a *rankSM) sendAG(sc *sim.ShardCtx, s int32) {
	w := a.w
	right := (int(a.r) + 1) % w.p
	w.send(sc, a.r, sim.ActorID(right), kAG, s, w.b)
}

// --- hierarchical alltoall: gather, leader pairwise, scatter --------

func (a *rankSM) a2aHier(sc *sim.ShardCtx, ev sim.Event) {
	w := a.w
	switch ev.Kind {
	case kStart:
		if a.li != 0 {
			// Member: ship the whole send buffer to the leader, then
			// wait for the result column.
			w.send(sc, a.r, a.lead, kA2AIn, 0, int64(w.p)*w.b)
			return
		}
		// Leader: stage own buffer; the local node block (own-node
		// sources into own image) is exchanged in staging memory.
		w.cpu[a.r] = sc.Now() + 2*w.packCost(int64(w.p)*w.b)
		for li := 0; li < w.rpn; li++ {
			w.mark(a.r, a.node*w.rpn+li)
		}
		if w.rpn == 1 {
			a.a2aStartInter(sc)
		}
	case kA2AIn:
		w.arrive(sc, a.r, ev.A)
		w.verify(sc, a.r, ev)
		a.gotIn++
		if int(a.gotIn) == w.rpn-1 {
			a.a2aStartInter(sc)
		}
	case kA2ANode:
		w.arrive(sc, a.r, ev.A)
		w.verify(sc, a.r, ev)
		sn := w.nodeOf(ev.From)
		for li := 0; li < w.rpn; li++ {
			w.mark(a.r, sn*w.rpn+li)
		}
		a.pendSet(ev.Round)
		for a.pendHas(a.round) {
			a.pendClear(a.round)
			a.round++
			if int(a.round) < w.nodes {
				a.sendNode(sc, a.round)
			} else {
				a.a2aScatter(sc)
			}
		}
	case kA2ACol:
		w.arrive(sc, a.r, ev.A)
		w.verify(sc, a.r, ev)
		for g := 0; g < w.p; g++ {
			w.mark(a.r, g)
		}
		a.finish(sc)
	default:
		panic(fmt.Sprintf("model: hier alltoall rank %d got kind %d", a.r, ev.Kind))
	}
}

func (a *rankSM) a2aStartInter(sc *sim.ShardCtx) {
	if a.w.nodes == 1 {
		a.a2aScatter(sc)
		return
	}
	a.round = 1
	a.sendNode(sc, 1)
}

func (a *rankSM) sendNode(sc *sim.ShardCtx, s int32) {
	w := a.w
	dNode, _ := pair(w.nodes, a.node, int(s))
	w.send(sc, a.r, sim.ActorID(dNode*w.rpn), kA2ANode, s, int64(w.rpn)*int64(w.rpn)*w.b)
}

// a2aScatter is phase 3: the leader sends each member its result
// column and keeps its own by local copy.
func (a *rankSM) a2aScatter(sc *sim.ShardCtx) {
	w := a.w
	for di := 1; di < w.rpn; di++ {
		w.send(sc, a.r, a.lead+sim.ActorID(di), kA2ACol, 0, int64(w.p)*w.b)
	}
	if t := sc.Now(); t > w.cpu[a.r] {
		w.cpu[a.r] = t
	}
	w.cpu[a.r] += 2 * w.packCost(int64(w.p)*w.b)
	a.finish(sc)
}

// --- hierarchical allgather: gather, leader ring, broadcast ---------

func (a *rankSM) agHier(sc *sim.ShardCtx, ev sim.Event) {
	w := a.w
	switch ev.Kind {
	case kStart:
		if a.li != 0 {
			w.send(sc, a.r, a.lead, kAGIn, 0, w.b)
			return
		}
		w.mark(a.r, int(a.r))
		if w.rpn == 1 {
			a.agStartRing(sc)
		}
	case kAGIn:
		w.arrive(sc, a.r, ev.A)
		w.verify(sc, a.r, ev)
		w.mark(a.r, int(ev.From))
		a.gotIn++
		if int(a.gotIn) == w.rpn-1 {
			a.agStartRing(sc)
		}
	case kAGSlab:
		w.arrive(sc, a.r, ev.A)
		w.verify(sc, a.r, ev)
		q := (w.nodeOf(ev.From) - int(ev.Round)%w.nodes + w.nodes) % w.nodes
		for li := 0; li < w.rpn; li++ {
			w.mark(a.r, q*w.rpn+li)
		}
		a.pendSet(ev.Round)
		for a.pendHas(a.round) {
			a.pendClear(a.round)
			a.round++
			if a.round <= int32safe(w.nodes-2) {
				a.sendSlab(sc, a.round)
			} else {
				a.agBcastDown(sc)
			}
		}
	case kAGBcast:
		w.arrive(sc, a.r, ev.A)
		w.verify(sc, a.r, ev)
		for g := 0; g < w.p; g++ {
			w.mark(a.r, g)
		}
		a.forwardBcast(sc)
		a.finish(sc)
	default:
		panic(fmt.Sprintf("model: hier allgather rank %d got kind %d", a.r, ev.Kind))
	}
}

func (a *rankSM) agStartRing(sc *sim.ShardCtx) {
	if a.w.nodes == 1 {
		a.agBcastDown(sc)
		return
	}
	a.round = 0
	a.sendSlab(sc, 0)
}

func (a *rankSM) sendSlab(sc *sim.ShardCtx, s int32) {
	w := a.w
	right := (a.node + 1) % w.nodes
	w.send(sc, a.r, sim.ActorID(right*w.rpn), kAGSlab, s, int64(w.rpn)*w.b)
}

// agBcastDown ends the leader's ring and broadcasts the assembled
// buffer down the node's binomial tree.
func (a *rankSM) agBcastDown(sc *sim.ShardCtx) {
	a.forwardBcast(sc)
	a.finish(sc)
}

// forwardBcast sends the assembled buffer to this rank's children in
// the intra-node binomial broadcast tree (the same vrank/mask walk the
// real bcastFlat performs; the leader is vrank 0).
func (a *rankSM) forwardBcast(sc *sim.ShardCtx) {
	w := a.w
	vr := a.li
	mask := 1
	for mask < w.rpn {
		if vr&mask != 0 {
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if vr&mask == 0 && vr+mask < w.rpn {
			w.send(sc, a.r, a.lead+sim.ActorID(vr+mask), kAGBcast, 0, int64(w.p)*w.b)
		}
		mask >>= 1
	}
}

// int32safe converts a small non-negative int for round comparisons.
func int32safe(n int) int32 {
	if n < 0 {
		return -1
	}
	return int32(n)
}
