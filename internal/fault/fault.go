// Package fault implements deterministic fault injection for the
// simulated cluster. A Plan describes which sites may fail and how
// often; an Injector evaluates the plan at runtime. Decisions are pure
// functions of (seed, site, occurrence counter) plus the virtual clock
// (for link-flap windows), so a run with a given plan is exactly
// reproducible and a run with a nil plan is byte-identical to a run
// without the subsystem: every hook is a method on a possibly-nil
// *Injector that returns immediately.
//
// Faults are charged virtual time. Detecting a failure is not free on
// real hardware — a send timeout burns the timeout, a dropped RDMA
// completion burns the ACK window — so every injected fault sleeps its
// site's detection latency on the victim process before the error
// surfaces. Retry backoff (see Backoff) is likewise virtual time. This
// keeps fault handling inside the performance model instead of beside
// it: a chaos run's figures are the figures of a faulty machine.
package fault

import (
	"errors"
	"fmt"

	"gpuddt/internal/sim"
)

// Sentinel error classes every injected fault maps onto. Callers decide
// recovery with errors.Is: a transient fault is worth the retry budget,
// a persistent fault fails every probe and the only useful reaction is
// protocol degradation (e.g. the staged copy-in/out downgrade when the
// P2P path is dead). Every *Error matches exactly one of the two.
var (
	// ErrTransient classifies faults that may succeed on retry.
	ErrTransient = errors.New("fault: transient")
	// ErrPersistent classifies hard faults that fail on every probe.
	ErrPersistent = errors.New("fault: persistent")
)

// Site names an injection point in the stack.
type Site string

// Injection sites. Each corresponds to one hook in internal/ib,
// internal/pcie, internal/cuda or internal/gpu.
const (
	// IBSend fails message injection at the HCA (send timeout, or a
	// link-flap window swallowing the post). Nothing is delivered.
	IBSend Site = "ib.send"
	// RDMAWrite fails an RDMA write. Half of the injected faults are
	// dropped completions: the payload lands remotely but the local
	// completion is lost (Error.Delivered reports which).
	RDMAWrite Site = "ib.rdma.write"
	// RDMARead fails an RDMA read, symmetric with RDMAWrite.
	RDMARead Site = "ib.rdma.read"
	// IBRegister fails pinning a memory region with the HCA.
	IBRegister Site = "ib.register"
	// IBRegEvict forces a registration-cache hit to behave as a miss
	// (an eviction storm): no error, only the re-registration cost.
	IBRegEvict Site = "ib.reg.evict"
	// PCIeCopy fails a synchronous copy (cudaMemcpy/cudaMemcpy2D or a
	// host-bus bounce copy) before any byte moves.
	PCIeCopy Site = "pcie.copy"
	// KernelLaunch fails a pack/unpack kernel launch. The device
	// retries autonomously (see gpu.Device); the fault never surfaces
	// past the stream, only its latency does.
	KernelLaunch Site = "gpu.launch"
	// IPCOpen fails mapping a peer process's device allocation
	// (cudaIpcOpenMemHandle). Persistent IPCOpen faults are how a
	// broken P2P path is modeled; the PML must downgrade to staged
	// copy-in/out.
	IPCOpen Site = "cuda.ipc.open"
)

// Sites lists every injection site.
func Sites() []Site {
	return []Site{IBSend, RDMAWrite, RDMARead, IBRegister, IBRegEvict, PCIeCopy, KernelLaunch, IPCOpen}
}

// flapSites are the wire-adjacent sites an IB link flap takes down.
var flapSites = map[Site]bool{IBSend: true, RDMAWrite: true, RDMARead: true}

// Error is an injected fault, carrying enough context to log and to
// decide recovery. It satisfies error.
type Error struct {
	Site Site
	At   sim.Time // virtual time of the decision
	N    int64    // bytes the failed operation covered
	Seq  uint64   // per-site occurrence number that faulted
	// Delivered reports that the operation's payload reached memory
	// before the completion was lost (dropped RDMA completion): the
	// caller's retry must be idempotent, not compensating.
	Delivered bool
	// Persistent reports that the site is marked permanently faulted in
	// the plan: retrying cannot succeed. Matched by errors.Is against
	// ErrPersistent (and its absence against ErrTransient).
	Persistent bool
}

func (e *Error) Error() string {
	d := ""
	if e.Delivered {
		d = " (payload delivered, completion lost)"
	}
	k := "transient"
	if e.Persistent {
		k = "persistent"
	}
	return fmt.Sprintf("fault: injected %s %s failure at %v (op %d, %d bytes)%s", k, e.Site, e.At, e.Seq, e.N, d)
}

// Is classifies the fault for errors.Is: every injected error matches
// exactly one of ErrTransient and ErrPersistent.
func (e *Error) Is(target error) bool {
	switch target {
	case ErrPersistent:
		return e.Persistent
	case ErrTransient:
		return !e.Persistent
	}
	return false
}

// WasDelivered reports whether err is an injected fault whose payload
// landed despite the lost completion.
func WasDelivered(err error) bool {
	var fe *Error
	return errors.As(err, &fe) && fe.Delivered
}

// Plan is the declarative fault schedule. The zero value of every field
// is benign; NewPlan fills the conventional defaults.
type Plan struct {
	// Seed drives every probabilistic decision.
	Seed uint64

	// Rates maps a site to its per-occurrence fault probability in
	// [0, 1). Sites absent from the map never fault probabilistically.
	Rates map[Site]float64

	// Persistent marks sites that fail on every probe — hard faults
	// (e.g. a dead P2P path) that no retry budget survives, forcing
	// protocol degradation.
	Persistent map[Site]bool

	// FlapPeriod/FlapDuration schedule IB link flaps: within every
	// period of virtual time, the first FlapDuration is an outage
	// during which the wire sites (IBSend, RDMAWrite, RDMARead) fail
	// deterministically. Zero period disables flapping. Keep the
	// duration well under the total retry backoff span (~1.5 ms at the
	// defaults) or senders will exhaust their budgets inside a window.
	FlapPeriod   sim.Time
	FlapDuration sim.Time

	// DetectLatency is charged when a local fault (copy, launch, IPC
	// map, registration) is detected. Default 2 µs.
	DetectLatency sim.Time
	// SendTimeout is charged when a send fault is detected. Default 25 µs.
	SendTimeout sim.Time
	// AckTimeout is charged when an RDMA completion is lost. Default 50 µs.
	AckTimeout sim.Time

	// MaxAttempts bounds every retry loop built on this plan (PML
	// fragment retries, autonomous kernel relaunch). Default 10.
	MaxAttempts int
	// BackoffBase/BackoffCap shape the capped exponential retry
	// backoff: base<<attempt, clamped. Defaults 2 µs / 250 µs.
	BackoffBase sim.Time
	BackoffCap  sim.Time
}

// NewPlan returns a plan seeded with seed that faults every transient
// site with probability rate. Tune Rates/Persistent/Flap* afterwards.
// The eviction-storm site gets the same rate (it is latency-only).
func NewPlan(seed uint64, rate float64) *Plan {
	pl := &Plan{
		Seed:       seed,
		Rates:      make(map[Site]float64),
		Persistent: make(map[Site]bool),
	}
	for _, s := range Sites() {
		pl.Rates[s] = rate
	}
	return pl
}

func (pl *Plan) withDefaults() Plan {
	out := *pl
	if out.DetectLatency == 0 {
		out.DetectLatency = 2 * sim.Microsecond
	}
	if out.SendTimeout == 0 {
		out.SendTimeout = 25 * sim.Microsecond
	}
	if out.AckTimeout == 0 {
		out.AckTimeout = 50 * sim.Microsecond
	}
	if out.MaxAttempts == 0 {
		out.MaxAttempts = 10
	}
	if out.BackoffBase == 0 {
		out.BackoffBase = 2 * sim.Microsecond
	}
	if out.BackoffCap == 0 {
		out.BackoffCap = 250 * sim.Microsecond
	}
	return out
}

// Default retry policy used when no plan is installed (the values a nil
// *Injector reports). Shared so fault-free and faulty runs agree on the
// budget shape.
const defaultMaxAttempts = 10

const (
	defaultBackoffBase = 2 * sim.Microsecond
	defaultBackoffCap  = 250 * sim.Microsecond
)

// Injector evaluates a Plan at runtime. One Injector serves a whole
// simulated world; the engine is single-threaded so no locking is
// needed. A nil *Injector is valid and injects nothing at zero cost.
type Injector struct {
	plan     Plan
	seq      map[Site]uint64
	injected map[Site]int64
}

// NewInjector compiles a plan. A nil plan yields a nil injector.
func NewInjector(pl *Plan) *Injector {
	if pl == nil {
		return nil
	}
	return &Injector{
		plan:     pl.withDefaults(),
		seq:      make(map[Site]uint64),
		injected: make(map[Site]int64),
	}
}

// Enabled reports whether fault injection is active.
func (in *Injector) Enabled() bool { return in != nil }

// MaxAttempts returns the plan's retry budget (the default when no plan
// is installed, so retry loops are uniformly bounded).
func (in *Injector) MaxAttempts() int {
	if in == nil {
		return defaultMaxAttempts
	}
	return in.plan.MaxAttempts
}

// Backoff returns the capped exponential backoff to sleep before retry
// number attempt+1 (attempt counts from 0).
func (in *Injector) Backoff(attempt int) sim.Time {
	base, cap := defaultBackoffBase, defaultBackoffCap
	if in != nil {
		base, cap = in.plan.BackoffBase, in.plan.BackoffCap
	}
	if attempt > 30 {
		attempt = 30
	}
	d := base << uint(attempt)
	if d > cap || d <= 0 {
		d = cap
	}
	return d
}

// splitmix64 is the decision hash: fast, full-period, seed-friendly.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func siteHash(s Site) uint64 {
	h := uint64(14695981039346656037) // FNV-1a
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// roll makes the deterministic decision for the site's next occurrence,
// returning the occurrence number, whether it faults, and the raw hash
// (whose spare bits pick the fault flavor).
func (in *Injector) roll(site Site) (seq uint64, hit bool, h uint64) {
	seq = in.seq[site]
	in.seq[site] = seq + 1
	if in.plan.Persistent[site] {
		return seq, true, 0
	}
	rate := in.plan.Rates[site]
	if rate <= 0 {
		return seq, false, 0
	}
	h = splitmix64(in.plan.Seed ^ siteHash(site) ^ (seq * 0x9e3779b97f4a7c15))
	return seq, float64(h>>11)/(1<<53) < rate, h
}

// flapping reports whether the wire is inside a link-flap outage window.
func (in *Injector) flapping(site Site, now sim.Time) bool {
	if in.plan.FlapPeriod <= 0 || !flapSites[site] {
		return false
	}
	return now%in.plan.FlapPeriod < in.plan.FlapDuration
}

// detectLatency resolves the virtual-time cost of discovering a fault
// at the given site.
func (in *Injector) detectLatency(site Site) sim.Time {
	switch site {
	case IBSend:
		return in.plan.SendTimeout
	case RDMAWrite, RDMARead:
		return in.plan.AckTimeout
	default:
		return in.plan.DetectLatency
	}
}

// Check probes the site for its next occurrence. On a fault it charges
// the site's detection latency on p under a "fault.inject" span, bumps
// the "fault.<site>" counter, and returns a *Error; otherwise it
// returns nil. Safe (and free) on a nil receiver.
func (in *Injector) Check(p *sim.Proc, site Site, n int64) error {
	if in == nil {
		return nil
	}
	seq, hit, h := in.roll(site)
	if !hit && !in.flapping(site, p.Now()) {
		return nil
	}
	in.injected[site]++
	p.Count("fault."+string(site), 1)
	e := &Error{Site: site, At: p.Now(), N: n, Seq: seq, Persistent: in.plan.Persistent[site]}
	// A dropped completion delivers the payload; use a spare hash bit
	// so half the RDMA faults exercise the idempotent-replay path.
	if (site == RDMAWrite || site == RDMARead) && h&1 == 1 {
		e.Delivered = true
	}
	sp := p.BeginBytes("fault.inject", n)
	sp.SetDetail(string(site))
	p.Sleep(in.detectLatency(site))
	sp.End()
	return e
}

// Evict probes the eviction-storm site: true means the caller should
// treat its cache hit as a miss. No error, no latency — the cost is the
// re-registration the caller performs. Safe on a nil receiver.
func (in *Injector) Evict(p *sim.Proc, site Site) bool {
	if in == nil {
		return false
	}
	_, hit, _ := in.roll(site)
	if hit {
		in.injected[site]++
		p.Count("fault."+string(site), 1)
	}
	return hit
}

// Injected returns a copy of the per-site injected-fault totals.
func (in *Injector) Injected() map[Site]int64 {
	out := make(map[Site]int64)
	if in == nil {
		return out
	}
	for s, n := range in.injected {
		out[s] = n
	}
	return out
}

// Total returns the number of faults injected so far.
func (in *Injector) Total() int64 {
	if in == nil {
		return 0
	}
	var t int64
	for _, n := range in.injected {
		t += n
	}
	return t
}
