package fault

import (
	"errors"
	"fmt"
	"testing"

	"gpuddt/internal/sim"
)

// run evaluates fn on a fresh engine process and returns the end time.
func run(t *testing.T, fn func(p *sim.Proc)) sim.Time {
	t.Helper()
	e := sim.NewEngine()
	e.Spawn("t", fn)
	e.Run()
	return e.Now()
}

func TestNilInjectorIsFree(t *testing.T) {
	var in *Injector
	end := run(t, func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			if err := in.Check(p, PCIeCopy, 1024); err != nil {
				t.Errorf("nil injector injected: %v", err)
			}
			if in.Evict(p, IBRegEvict) {
				t.Error("nil injector evicted")
			}
		}
	})
	if end != 0 {
		t.Fatalf("nil injector charged %v of virtual time", end)
	}
	if in.Enabled() || in.Total() != 0 {
		t.Fatal("nil injector claims activity")
	}
	if in.MaxAttempts() != defaultMaxAttempts {
		t.Fatalf("nil MaxAttempts = %d", in.MaxAttempts())
	}
	if in.Backoff(0) != defaultBackoffBase || in.Backoff(40) != defaultBackoffCap {
		t.Fatalf("nil backoff schedule wrong: %v, %v", in.Backoff(0), in.Backoff(40))
	}
}

func TestDeterministicDecisions(t *testing.T) {
	decide := func() []bool {
		in := NewInjector(NewPlan(42, 0.3))
		var out []bool
		run(t, func(p *sim.Proc) {
			for i := 0; i < 200; i++ {
				out = append(out, in.Check(p, IBSend, 64) != nil)
			}
		})
		return out
	}
	a, b := decide(), decide()
	var hits int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs between identical runs", i)
		}
		if a[i] {
			hits++
		}
	}
	if hits == 0 || hits == len(a) {
		t.Fatalf("rate 0.3 produced %d/%d faults", hits, len(a))
	}
	// A different seed must flip at least one decision.
	in2 := NewInjector(NewPlan(43, 0.3))
	diff := false
	run(t, func(p *sim.Proc) {
		for i := range a {
			if (in2.Check(p, IBSend, 64) != nil) != a[i] {
				diff = true
			}
		}
	})
	if !diff {
		t.Fatal("seeds 42 and 43 produced identical decision streams")
	}
}

func TestPersistentSiteAlwaysFaults(t *testing.T) {
	pl := NewPlan(7, 0)
	pl.Persistent[IPCOpen] = true
	in := NewInjector(pl)
	run(t, func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			if in.Check(p, IPCOpen, 4096) == nil {
				t.Fatal("persistent site succeeded")
			}
			if in.Check(p, PCIeCopy, 4096) != nil {
				t.Fatal("rate-0 transient site faulted")
			}
		}
	})
	if got := in.Injected()[IPCOpen]; got != 20 {
		t.Fatalf("injected[IPCOpen] = %d, want 20", got)
	}
}

func TestDetectionLatencyCharged(t *testing.T) {
	pl := NewPlan(1, 0)
	pl.Persistent[IBSend] = true
	in := NewInjector(pl)
	end := run(t, func(p *sim.Proc) {
		if err := in.Check(p, IBSend, 64); err == nil {
			t.Fatal("expected fault")
		}
	})
	if end != 25*sim.Microsecond {
		t.Fatalf("send timeout charged %v, want 25µs", end)
	}
}

func TestLinkFlapWindow(t *testing.T) {
	pl := NewPlan(1, 0)
	pl.FlapPeriod = 100 * sim.Microsecond
	pl.FlapDuration = 10 * sim.Microsecond
	in := NewInjector(pl)
	run(t, func(p *sim.Proc) {
		if err := in.Check(p, IBSend, 64); err == nil {
			t.Fatal("send inside flap window succeeded")
		}
		// Check charged the send timeout (25µs), escaping the window.
		if err := in.Check(p, IBSend, 64); err != nil {
			t.Fatalf("send outside flap window failed: %v", err)
		}
		// Flaps only hit wire sites.
		p.Sleep(75 * sim.Microsecond) // back inside the next window
		if err := in.Check(p, PCIeCopy, 64); err != nil {
			t.Fatalf("flap window hit a non-wire site: %v", err)
		}
	})
}

func TestDroppedCompletionFlavor(t *testing.T) {
	in := NewInjector(NewPlan(5, 0.5))
	var delivered, dropped int
	run(t, func(p *sim.Proc) {
		for i := 0; i < 400; i++ {
			if err := in.Check(p, RDMAWrite, 1<<20); err != nil {
				if WasDelivered(err) {
					delivered++
				} else {
					dropped++
				}
			}
		}
	})
	if delivered == 0 || dropped == 0 {
		t.Fatalf("RDMA fault flavors unbalanced: delivered=%d dropped=%d", delivered, dropped)
	}
	if WasDelivered(nil) {
		t.Fatal("WasDelivered(nil)")
	}
}

func TestBackoffShape(t *testing.T) {
	in := NewInjector(NewPlan(1, 0))
	prev := sim.Time(0)
	for a := 0; a < 12; a++ {
		d := in.Backoff(a)
		if d < prev {
			t.Fatalf("backoff not monotone at attempt %d: %v < %v", a, d, prev)
		}
		if d > 250*sim.Microsecond {
			t.Fatalf("backoff exceeds cap: %v", d)
		}
		prev = d
	}
}

// TestSentinelClassification asserts every injected error matches
// exactly one of the two sentinel classes under errors.Is, wrapped or
// not, and that WasDelivered survives wrapping.
func TestSentinelClassification(t *testing.T) {
	pl := NewPlan(1, 1.0)
	pl.Persistent[IPCOpen] = true
	in := NewInjector(pl)
	run(t, func(p *sim.Proc) {
		hard := in.Check(p, IPCOpen, 64)
		if hard == nil {
			t.Fatal("persistent site did not fault")
		}
		if !errors.Is(hard, ErrPersistent) || errors.Is(hard, ErrTransient) {
			t.Fatalf("persistent fault misclassified: %v", hard)
		}
		soft := in.Check(p, PCIeCopy, 64)
		if soft == nil {
			t.Fatal("rate-1.0 site did not fault")
		}
		if !errors.Is(soft, ErrTransient) || errors.Is(soft, ErrPersistent) {
			t.Fatalf("transient fault misclassified: %v", soft)
		}
		wrapped := fmt.Errorf("pml: %w", hard)
		if !errors.Is(wrapped, ErrPersistent) {
			t.Fatal("wrapping lost the persistent classification")
		}
		var delivered error
		for i := 0; delivered == nil && i < 64; i++ {
			if err := in.Check(p, RDMAWrite, 64); WasDelivered(err) {
				delivered = fmt.Errorf("frag 3: %w", err)
			}
		}
		if delivered == nil {
			t.Fatal("no dropped-completion fault in 64 rolls at rate 1.0")
		}
		if !WasDelivered(delivered) {
			t.Fatal("WasDelivered does not unwrap")
		}
	})
}
